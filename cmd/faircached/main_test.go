package main

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/server/loadgen"
)

// buildDaemon compiles the faircached binary into a temp dir once per
// test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "faircached")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port and returns the
// base URL parsed from its "listening on" banner.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, *bufio.Scanner, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(10 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "faircached: listening on "); ok {
			return cmd, scanner, "http://" + strings.TrimSpace(addr)
		}
		if time.Now().After(deadline) {
			break
		}
	}
	_ = cmd.Process.Kill()
	t.Fatalf("daemon never printed its listen banner (scan err: %v)", scanner.Err())
	return nil, nil, ""
}

// TestEndToEnd starts the daemon and drives it through the typed client:
// /healthz, register a 4x4 grid, solve it over the v1 nested-options
// schema, answer a lookup, scrape /metrics, and shut down gracefully on
// SIGINT.
func TestEndToEnd(t *testing.T) {
	bin := buildDaemon(t)
	cmd, scanner, baseURL := startDaemon(t, bin)
	defer func() { _ = cmd.Process.Kill() }()
	ctx := context.Background()
	cl := client.New(baseURL)

	// Health.
	health, err := cl.Healthz(ctx)
	if err != nil || health.Status != "ok" {
		t.Fatalf("healthz: %+v err %v", health, err)
	}

	// Register a 4x4 grid.
	producer := 5
	reg, err := cl.Register(ctx, &server.RegisterRequest{Kind: "grid", Rows: 4, Cols: 4, Producer: &producer})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if reg.Nodes != 16 || reg.ID == "" {
		t.Fatalf("register response %+v", reg)
	}

	// Solve it: a legacy alias in the canonical nested options must echo
	// the canonical name with no deprecation notes.
	solve, err := cl.Solve(ctx, reg.ID, &server.SolveRequest{
		Chunks:  3,
		Options: &server.SolveOptions{Algorithm: "approximate"},
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if len(solve.Holders) != 3 || solve.TotalCost <= 0 {
		t.Fatalf("solve response %+v", solve)
	}
	if solve.Algorithm != "Appx" {
		t.Errorf("solve echoed algorithm %q, want canonical Appx", solve.Algorithm)
	}
	if len(solve.Deprecated) != 0 {
		t.Errorf("nested options flagged as deprecated: %v", solve.Deprecated)
	}

	// Answer a lookup from the committed placement.
	lk, err := cl.Lookup(ctx, reg.ID, 1, 15)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if lk.ServedBy < 0 || lk.ServedBy >= 16 || lk.Hops < 0 {
		t.Fatalf("lookup response %+v", lk)
	}
	if !lk.FromProducer {
		found := false
		for _, h := range solve.Holders[1] {
			if h == lk.ServedBy {
				found = true
			}
		}
		if !found {
			t.Fatalf("lookup served by %d, not in holders %v", lk.ServedBy, solve.Holders[1])
		}
	}

	// A typed error decodes from the envelope.
	if _, err := cl.Lookup(ctx, reg.ID, 99, 0); !client.IsNotFound(err) {
		t.Errorf("lookup of unknown chunk: err %v, want not_found APIError", err)
	}

	// The Prometheus endpoint serves the counters this test just moved.
	metricsText, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`faircached_requests_total{endpoint="solve"} 1`,
		"faircached_solve_duration_seconds_count 1",
		"# TYPE faircached_request_duration_seconds histogram",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Graceful SIGINT shutdown.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	sawComplete := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "shutdown complete") {
			sawComplete = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
	}
	if !sawComplete {
		t.Fatal("daemon never reported graceful shutdown")
	}
}

// TestPprofFlag checks the profiling surface is strictly opt-in: with
// -pprof the daemon serves /debug/pprof/, without it the path 404s and
// the regular API still answers.
func TestPprofFlag(t *testing.T) {
	bin := buildDaemon(t)

	cmd, _, baseURL := startDaemon(t, bin, "-pprof")
	resp, err := http.Get(baseURL + "/debug/pprof/")
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatalf("GET /debug/pprof/ with -pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("with -pprof, /debug/pprof/ returned %d, want 200", resp.StatusCode)
	}
	if health, err := client.New(baseURL).Healthz(context.Background()); err != nil || health.Status != "ok" {
		t.Errorf("with -pprof, healthz: %+v err %v (API must still route)", health, err)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()

	cmd, _, baseURL = startDaemon(t, bin)
	defer func() { _ = cmd.Process.Kill() }()
	resp, err = http.Get(baseURL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/ without -pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("without -pprof, /debug/pprof/ returned %d, want 404", resp.StatusCode)
	}
}

// TestLoadMode runs the self-driving load mode end to end: the daemon
// registers its own grid, drives traffic, prints throughput and exits 0.
func TestLoadMode(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "-load-grid", "4x4", "-load-requests", "60", "-load-workers", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("load mode: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"load mode:", "load done:", "ops/s", "shutdown complete"} {
		if !strings.Contains(text, want) {
			t.Errorf("load-mode output missing %q:\n%s", want, text)
		}
	}
}

// TestSolveBurstLoadMode runs the identical-solve burst end to end and
// asserts the coalescing acceptance bar: the burst's requests collapse
// onto at least 5x fewer underlying solves, so the reported hit rate is
// positive.
func TestSolveBurstLoadMode(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "-load-mode", "solve-burst",
		"-load-grid", "10x10", "-load-requests", "200", "-load-workers", "16", "-load-chunks", "20")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("solve-burst mode: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"solve-burst load mode:", "burst done:", "hit rate", "shutdown complete"} {
		if !strings.Contains(text, want) {
			t.Errorf("solve-burst output missing %q:\n%s", want, text)
		}
	}
	m := regexp.MustCompile(`burst done: (\d+) requests in .* — (\d+) underlying solves`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("cannot parse burst summary:\n%s", text)
	}
	requests, _ := strconv.Atoi(m[1])
	solves, _ := strconv.Atoi(m[2])
	if solves == 0 || requests/solves < 5 {
		t.Errorf("burst ran %d underlying solves for %d requests, want >= 5x coalescing:\n%s", solves, requests, text)
	}
}

// TestCrashRecovery is the durability end-to-end test: a daemon with
// -data-dir takes a register, a solve and 20+ publications (the last
// stretch from the concurrent load generator), dies on SIGKILL
// mid-stream, and a restart on the same dir must answer /report and
// /lookup exactly as the write-ahead log says the last fsynced commit
// did. The expected state is derived from the WAL through
// server.LoadWALState — an independent decode path, not the server's
// own recovery code.
func TestCrashRecovery(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	cmd, _, baseURL := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	defer func() { _ = cmd.Process.Kill() }()
	ctx := context.Background()
	cl := client.New(baseURL)

	producer := 5
	reg, err := cl.Register(ctx, &server.RegisterRequest{Kind: "grid", Rows: 4, Cols: 4, Producer: &producer})
	if err != nil || reg.ID == "" {
		t.Fatalf("register: %+v err %v", reg, err)
	}

	if _, err := cl.Solve(ctx, reg.ID, &server.SolveRequest{
		Chunks:  3,
		Options: &server.SolveOptions{Algorithm: "appx"},
	}); err != nil {
		t.Fatalf("solve: %v", err)
	}

	// 20 acknowledged publications, then the load generator keeps the
	// mutation stream hot so SIGKILL lands mid-traffic.
	for i := 0; i < 20; i++ {
		if _, err := cl.Publish(ctx, reg.ID, 1); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		// The generator dies with the daemon; any error is expected.
		_, _ = loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: baseURL, TopologyID: reg.ID, Requests: 100000, Workers: 4,
		})
	}()
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()
	<-loadDone

	// What does the log say survived? Every acknowledged response was
	// fsynced first, so this is at least the state the client saw.
	st, err := server.LoadWALState(dataDir)
	if err != nil {
		t.Fatalf("LoadWALState: %v", err)
	}
	var want *server.WALTopology
	for i := range st.Topologies {
		if st.Topologies[i].ID == reg.ID {
			want = &st.Topologies[i]
		}
	}
	if want == nil || want.Snap == nil {
		t.Fatalf("WAL lost topology %s: %+v", reg.ID, st)
	}
	if want.Clock < 20 {
		t.Fatalf("WAL recorded only %d publications, want >= 20", want.Clock)
	}

	cmd2, scanner2, baseURL2 := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	defer func() { _ = cmd2.Process.Kill() }()
	cl2 := client.New(baseURL2)

	rep, err := cl2.Report(ctx, reg.ID)
	if err != nil {
		t.Fatalf("recovered report: %v", err)
	}
	if !reflect.DeepEqual(rep.Snapshot, want.Snap) {
		t.Errorf("recovered snapshot diverges from the WAL:\n wal    %+v\n server %+v", want.Snap, rep.Snapshot)
	}

	// Lookups answer from the recovered holder sets.
	for chunk := 0; chunk < 3; chunk++ {
		lk, err := cl2.Lookup(ctx, reg.ID, chunk, 0)
		if err != nil {
			t.Fatalf("recovered lookup chunk %d: %v", chunk, err)
		}
		if lk.Version != want.Snap.Version {
			t.Errorf("lookup chunk %d answered from v%d, want v%d", chunk, lk.Version, want.Snap.Version)
		}
		if !lk.FromProducer {
			holders := want.Snap.Holders[chunk]
			found := false
			for _, h := range holders {
				if h == lk.ServedBy {
					found = true
				}
			}
			if !found {
				t.Errorf("lookup chunk %d served by %d, not in WAL holders %v", chunk, lk.ServedBy, holders)
			}
		}
	}

	// The clock keeps counting where the log left off.
	pub, err := cl2.Publish(ctx, reg.ID, 1)
	if err != nil {
		t.Fatalf("post-recovery publish: %v", err)
	}
	if pub.Clock != want.Snap.Clock+1 || pub.Version != want.Snap.Version+1 {
		t.Errorf("post-recovery publish v%d clock %d, want v%d clock %d",
			pub.Version, pub.Clock, want.Snap.Version+1, want.Snap.Clock+1)
	}

	if err := cmd2.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	for scanner2.Scan() {
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("recovered daemon exited non-zero: %v", err)
	}
}

// TestInspectMode checks -inspect prints a record listing and the
// folded state without starting a server.
func TestInspectMode(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	cmd, scanner, baseURL := startDaemon(t, bin, "-data-dir", dataDir)
	defer func() { _ = cmd.Process.Kill() }()
	ctx := context.Background()
	cl := client.New(baseURL)

	reg, err := cl.Register(ctx, &server.RegisterRequest{Kind: "grid", Rows: 3, Cols: 3})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := cl.Publish(ctx, reg.ID, 1); err != nil {
		t.Fatalf("publish: %v", err)
	}
	_ = cmd.Process.Signal(os.Interrupt)
	for scanner.Scan() {
	}
	_ = cmd.Wait()

	out, err := exec.Command(bin, "-inspect", "-data-dir", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"WAL entries", "register " + reg.ID, "publish  " + reg.ID, "recovered state:", "clock=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("inspect output missing %q:\n%s", want, text)
		}
	}
	// Redacted: the listing must not dump holder sets.
	if strings.Contains(text, "holders") || strings.Contains(text, "Holders") {
		t.Errorf("inspect output leaks holder sets:\n%s", text)
	}

	if out, err := exec.Command(bin, "-inspect").CombinedOutput(); err == nil {
		t.Errorf("-inspect without -data-dir should fail, got:\n%s", out)
	}
}

func TestParseGrid(t *testing.T) {
	rows, cols, err := parseGrid("4x6")
	if err != nil || rows != 4 || cols != 6 {
		t.Fatalf("parseGrid(4x6) = %d,%d,%v", rows, cols, err)
	}
	for _, bad := range []string{"", "4", "x", "ax2", "2xb"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) should fail", bad)
		}
	}
}
