// Command faircached is the fair-caching placement daemon: it serves the
// internal/server placement service over HTTP/JSON. Topologies are
// registered, solved, published to and queried over the /v1 API; health
// and expvar counters live on /healthz and /debug/vars.
//
// Examples:
//
//	faircached                          # serve on :8080, in-memory
//	faircached -addr 127.0.0.1:9090    # explicit bind address
//	faircached -data-dir /var/lib/fc    # durable: WAL + snapshots; a
//	                                    # restart on the same dir recovers
//	                                    # every topology and placement
//	faircached -data-dir d -fsync never # trade durability for speed
//	faircached -data-dir d -inspect     # print a redacted record listing
//	                                    # of an existing data dir and exit
//	faircached -load                    # self-driving load-test mode:
//	                                    # registers a grid, hammers it,
//	                                    # prints throughput, exits
//	faircached -pprof                   # also serve net/http/pprof
//	                                    # profiles under /debug/pprof/
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (up to -drain-timeout), then every
// topology worker is stopped and the write-ahead log is closed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/server/loadgen"
	"repro/internal/wal"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		solveTimeout  = flag.Duration("solve-timeout", 30*time.Second, "server-side cap on one solve request")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		maxNodes      = flag.Int("max-nodes", 4096, "largest registrable topology")
		dataDir       = flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty keeps the service in-memory")
		fsync         = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		snapshotEvery = flag.Int("snapshot-every", 256, "WAL records between full-state snapshots (negative disables)")
		inspect       = flag.Bool("inspect", false, "print a redacted record listing of -data-dir and exit")
		coalesceOn    = flag.Bool("coalesce", true, "coalesce concurrent identical solve/report requests onto shared flights")
		pprofOn       = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceSample   = flag.Int("trace-sample", 0, "record solve-phase spans for 1 in N solve/adapt requests on GET /debug/trace (0 disables; explain requests always record)")
		load          = flag.Bool("load", false, "self-driving load mode: register a grid, run the load generator, print stats, exit")
		loadMode      = flag.String("load-mode", "mixed", "-load workload: mixed (lookups/publishes/reports) or solve-burst (identical solves, reports coalescing hit rate)")
		loadGrid      = flag.String("load-grid", "6x6", "grid for -load mode, ROWSxCOLS")
		loadRequests  = flag.Int("load-requests", 500, "total operations in -load mode")
		loadWorkers   = flag.Int("load-workers", 4, "concurrent clients in -load mode")
		loadChunks    = flag.Int("load-chunks", 20, "chunks per identical solve in solve-burst mode (heavier solves widen the coalescing window)")
	)
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faircached:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *inspect {
		if err := runInspect(os.Stdout, *dataDir); err != nil {
			logger.Error("inspect failed", "err", err)
			os.Exit(1)
		}
		return
	}
	opts := server.Options{
		SolveTimeout:      *solveTimeout,
		MaxNodes:          *maxNodes,
		DataDir:           *dataDir,
		Fsync:             *fsync,
		SnapshotEvery:     *snapshotEvery,
		DisableCoalescing: !*coalesceOn,
		Logger:            logger,
		TraceSample:       *traceSample,
	}
	lc := loadConfig{mode: *loadMode, grid: *loadGrid, requests: *loadRequests, workers: *loadWorkers, chunks: *loadChunks}
	if err := run(*addr, opts, *drainTimeout, *pprofOn, *load, lc); err != nil {
		logger.Error("daemon exited with error", "err", err)
		os.Exit(1)
	}
}

// buildLogger constructs the daemon's slog handler from the -log-format
// and -log-level flags.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, ho)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// loadConfig carries the -load* flags into the self-driving load modes.
type loadConfig struct {
	mode     string
	grid     string
	requests int
	workers  int
	chunks   int
}

func run(addr string, opts server.Options, drainTimeout time.Duration, pprofOn, load bool, lc loadConfig) error {
	svc, err := server.New(opts)
	if err != nil {
		return err
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	if opts.DataDir != "" {
		log.Info("durable state enabled", "dir", opts.DataDir, "fsync", opts.Fsync)
	}
	// Profiling is opt-in: the pprof handlers expose internals (heap
	// contents, goroutine stacks) that have no place on a default deploy.
	handler := http.Handler(svc)
	if pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		handler = mux
		log.Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	log.Info("listening", "addr", ln.Addr().String(), "traceSample", opts.TraceSample)
	// Lifecycle banners stay on stdout as a plain-text contract: wrapper
	// scripts (and the e2e tests) parse the bound address and the clean
	// exit from here, while the structured log stream goes to stderr in
	// whatever -log-format selected.
	fmt.Printf("faircached: listening on %s\n", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var loadErr error
	if load {
		loadErr = runLoad(ctx, "http://"+ln.Addr().String(), lc)
		stop() // load run finished (or failed): begin shutdown
	}

	select {
	case <-ctx.Done():
		log.Info("shutting down, draining in-flight requests", "drainTimeout", drainTimeout.String())
	case err := <-serveErr:
		svc.Close()
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Error("drain did not complete", "err", err)
	}
	svc.Close()
	log.Info("shutdown complete")
	fmt.Printf("faircached: shutdown complete\n")
	return loadErr
}

// runInspect prints one line per WAL record in a data dir — file, offset,
// type, topology id, version, clock and payload size, but never holder
// sets or counts (the listing is redacted) — followed by the registry
// state a recovery would produce.
func runInspect(w io.Writer, dir string) error {
	if dir == "" {
		return fmt.Errorf("-inspect requires -data-dir")
	}
	entries, err := wal.List(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "faircached: %s: %d WAL entries\n", dir, len(entries))
	for _, e := range entries {
		if e.Err != "" {
			fmt.Fprintf(w, "%s @%-6d %-8s  UNDECODABLE: %s\n", e.File, e.Offset, e.Kind, e.Err)
			continue
		}
		fmt.Fprintf(w, "%s @%-6d %-8s  %s  (%d bytes)\n", e.File, e.Offset, e.Kind, describePayload(e.Kind, e.Payload), len(e.Payload))
	}
	st, err := server.LoadWALState(dir)
	if err != nil {
		return fmt.Errorf("replaying state: %w", err)
	}
	fmt.Fprintf(w, "recovered state: nextID=%d topologies=%d\n", st.NextID, len(st.Topologies))
	for _, ts := range st.Topologies {
		version, chunks := 1, 0
		if ts.Snap != nil {
			version, chunks = ts.Snap.Version, ts.Snap.Chunks
		}
		fmt.Fprintf(w, "  %s kind=%s producer=%d capacity=%d version=%d clock=%d chunks=%d\n",
			ts.ID, ts.Kind, ts.Producer, ts.Capacity, version, ts.Clock, chunks)
	}
	return nil
}

// describePayload summarizes one record without leaking its contents.
func describePayload(kind string, payload []byte) string {
	if kind == "snapshot" {
		var st server.WALState
		if err := json.Unmarshal(payload, &st); err != nil {
			return "snapshot (unparseable)"
		}
		return fmt.Sprintf("state snapshot: %d topologies, nextID=%d", len(st.Topologies), st.NextID)
	}
	var rec server.WALRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return "record (unparseable)"
	}
	switch rec.Type {
	case server.WALRegister:
		return fmt.Sprintf("register %s kind=%s producer=%d capacity=%d", rec.ID, rec.Kind, rec.Producer, rec.Capacity)
	case server.WALSolve:
		return fmt.Sprintf("solve    %s version=%d source=%s chunks=%d", rec.ID, rec.Snap.Version, rec.Snap.Source, rec.Snap.Chunks)
	case server.WALPublish:
		return fmt.Sprintf("publish  %s version=%d clock=%d count=%d", rec.ID, rec.Snap.Version, rec.Snap.Clock, rec.Count)
	case server.WALAdapt:
		return fmt.Sprintf("adapt    %s version=%d chunks=%d", rec.ID, rec.Snap.Version, rec.Snap.Chunks)
	case server.WALDelete:
		return fmt.Sprintf("delete   %s", rec.ID)
	default:
		return fmt.Sprintf("unknown type %q", rec.Type)
	}
}

// runLoad self-drives the daemon: register a grid topology against the
// live socket via the typed client, run the selected load-generator
// workload, and print its stats.
func runLoad(ctx context.Context, baseURL string, lc loadConfig) error {
	rows, cols, err := parseGrid(lc.grid)
	if err != nil {
		return err
	}
	cl := client.New(baseURL)
	reg, err := cl.Register(ctx, &server.RegisterRequest{Kind: "grid", Rows: rows, Cols: cols})
	if err != nil {
		return fmt.Errorf("load register: %w", err)
	}
	switch lc.mode {
	case "mixed":
		fmt.Printf("faircached: load mode: %d ops over %dx%d grid %s with %d workers\n",
			lc.requests, rows, cols, reg.ID, lc.workers)
		stats, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:    baseURL,
			TopologyID: reg.ID,
			Requests:   lc.requests,
			Workers:    lc.workers,
		})
		if err != nil {
			return fmt.Errorf("load run: %w", err)
		}
		fmt.Printf("faircached: load done: %d ops in %v (%.0f ops/s) — %d lookups, %d publishes, %d reports, %d errors\n",
			stats.Total(), stats.Elapsed.Round(time.Millisecond), stats.Throughput(),
			stats.Lookups, stats.Publishes, stats.Reports, stats.Errors)
		return nil
	case "solve-burst":
		fmt.Printf("faircached: solve-burst load mode: %d identical solves over %dx%d grid %s with %d workers\n",
			lc.requests, rows, cols, reg.ID, lc.workers)
		stats, err := loadgen.RunSolveBurst(ctx, loadgen.SolveBurstConfig{
			BaseURL:    baseURL,
			TopologyID: reg.ID,
			Requests:   lc.requests,
			Workers:    lc.workers,
			Chunks:     lc.chunks,
		})
		if err != nil {
			return fmt.Errorf("load run: %w", err)
		}
		fmt.Printf("faircached: burst done: %d requests in %v (%.0f req/s) — %d underlying solves, %d coalesced (hit rate %.1f%%), p50 %v, p99 %v, %d errors\n",
			stats.Requests, stats.Elapsed.Round(time.Millisecond), stats.Throughput(),
			stats.Solves, stats.Coalesced, 100*stats.HitRate(),
			stats.P50.Round(10*time.Microsecond), stats.P99.Round(10*time.Microsecond), stats.Errors)
		return nil
	default:
		return fmt.Errorf("unknown -load-mode %q (want mixed or solve-burst)", lc.mode)
	}
}

func parseGrid(spec string) (rows, cols int, err error) {
	parts := strings.SplitN(strings.ToLower(spec), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad grid spec %q, want ROWSxCOLS", spec)
	}
	rows, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid rows %q", parts[0])
	}
	cols, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid cols %q", parts[1])
	}
	return rows, cols, nil
}
