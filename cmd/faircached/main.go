// Command faircached is the fair-caching placement daemon: it serves the
// internal/server placement service over HTTP/JSON. Topologies are
// registered, solved, published to and queried over the /v1 API; health
// and expvar counters live on /healthz and /debug/vars.
//
// Examples:
//
//	faircached                          # serve on :8080
//	faircached -addr 127.0.0.1:9090    # explicit bind address
//	faircached -load                    # self-driving load-test mode:
//	                                    # registers a grid, hammers it,
//	                                    # prints throughput, exits
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (up to -drain-timeout), then every
// topology worker is stopped.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/server/loadgen"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		solveTimeout = flag.Duration("solve-timeout", 30*time.Second, "server-side cap on one solve request")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		maxNodes     = flag.Int("max-nodes", 4096, "largest registrable topology")
		load         = flag.Bool("load", false, "self-driving load mode: register a grid, run the load generator, print stats, exit")
		loadGrid     = flag.String("load-grid", "6x6", "grid for -load mode, ROWSxCOLS")
		loadRequests = flag.Int("load-requests", 500, "total operations in -load mode")
		loadWorkers  = flag.Int("load-workers", 4, "concurrent clients in -load mode")
	)
	flag.Parse()

	if err := run(*addr, *solveTimeout, *drainTimeout, *maxNodes, *load, *loadGrid, *loadRequests, *loadWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "faircached:", err)
		os.Exit(1)
	}
}

func run(addr string, solveTimeout, drainTimeout time.Duration, maxNodes int, load bool, loadGrid string, loadRequests, loadWorkers int) error {
	svc := server.New(server.Options{SolveTimeout: solveTimeout, MaxNodes: maxNodes})
	httpSrv := &http.Server{Handler: svc}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("faircached: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var loadErr error
	if load {
		loadErr = runLoad(ctx, "http://"+ln.Addr().String(), loadGrid, loadRequests, loadWorkers)
		stop() // load run finished (or failed): begin shutdown
	}

	select {
	case <-ctx.Done():
		fmt.Println("faircached: shutting down, draining in-flight requests")
	case err := <-serveErr:
		svc.Close()
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "faircached: drain:", err)
	}
	svc.Close()
	fmt.Println("faircached: shutdown complete")
	return loadErr
}

// runLoad self-drives the daemon: register a grid topology against the
// live socket, run the load generator, and print throughput plus the
// service counters the run produced.
func runLoad(ctx context.Context, baseURL, grid string, requests, workers int) error {
	rows, cols, err := parseGrid(grid)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(server.RegisterRequest{Kind: "grid", Rows: rows, Cols: cols})
	resp, err := http.Post(baseURL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("load register: %w", err)
	}
	defer resp.Body.Close()
	var reg server.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil || reg.ID == "" {
		return fmt.Errorf("load register: status %d (%v)", resp.StatusCode, err)
	}
	fmt.Printf("faircached: load mode: %d ops over %dx%d grid %s with %d workers\n",
		requests, rows, cols, reg.ID, workers)

	stats, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:    baseURL,
		TopologyID: reg.ID,
		Requests:   requests,
		Workers:    workers,
	})
	if err != nil {
		return fmt.Errorf("load run: %w", err)
	}
	fmt.Printf("faircached: load done: %d ops in %v (%.0f ops/s) — %d lookups, %d publishes, %d reports, %d errors\n",
		stats.Total(), stats.Elapsed.Round(time.Millisecond), stats.Throughput(),
		stats.Lookups, stats.Publishes, stats.Reports, stats.Errors)
	return nil
}

func parseGrid(spec string) (rows, cols int, err error) {
	parts := strings.SplitN(strings.ToLower(spec), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad grid spec %q, want ROWSxCOLS", spec)
	}
	rows, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid rows %q", parts[0])
	}
	cols, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid cols %q", parts[1])
	}
	return rows, cols, nil
}
