// Command faircache runs one fair-caching placement on a grid or random
// topology and prints the placement, fairness metrics and contention cost.
//
// Examples:
//
//	faircache -alg appx -grid 6x6 -producer 9 -chunks 5
//	faircache -alg dist -random 100 -seed 7 -chunks 5 -hops 2
//	faircache -alg brtf -grid 4x4 -chunks 2 -budget 20000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	faircache "repro"
)

func main() {
	var (
		algName  = flag.String("alg", "appx", "algorithm: appx, dist, hopc, cont, brtf")
		grid     = flag.String("grid", "6x6", "grid topology ROWSxCOLS")
		randomN  = flag.Int("random", 0, "random geometric topology with N nodes (overrides -grid)")
		seed     = flag.Int64("seed", 1, "random topology seed")
		producer = flag.Int("producer", -1, "producer node (-1: node 9 on grids, central node on random)")
		chunks   = flag.Int("chunks", 5, "number of distinct data chunks")
		capacity = flag.Int("capacity", 5, "per-node cache capacity in chunks")
		hops     = flag.Int("hops", 2, "hop limit for the distributed protocol")
		lambda   = flag.Float64("lambda", 0, "baseline per-cache cost (0 = calibrated)")
		budget   = flag.Int("budget", 0, "exact-solver search budget (0 = exhaustive)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	// Ctrl-C cancels the context and the engine aborts mid-solve instead
	// of running a doomed placement to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, *algName, *grid, *randomN, *seed, *producer, *chunks, *capacity, *hops, *lambda, *budget, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "faircache:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, algName, grid string, randomN int, seed int64, producer, chunks, capacity, hops int, lambda float64, budget int, asJSON bool) error {
	topo, err := buildTopology(grid, randomN, seed)
	if err != nil {
		return err
	}
	if producer < 0 {
		if randomN > 0 {
			producer = topo.CentralNode()
		} else if topo.NumNodes() > 9 {
			producer = 9
		} else {
			producer = topo.NumNodes() / 2
		}
	}
	alg, err := parseAlgorithm(algName)
	if err != nil {
		return err
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		return err
	}
	res, err := solver.Solve(ctx, faircache.Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: alg,
		Options: &faircache.Options{
			Capacity:     capacity,
			HopLimit:     hops,
			Lambda:       lambda,
			SearchBudget: budget,
		},
	})
	if err != nil {
		return err
	}
	if asJSON {
		return reportJSON(res, topo)
	}
	return report(res, topo)
}

func parseAlgorithm(name string) (faircache.Algorithm, error) {
	switch strings.ToLower(name) {
	case "appx":
		return faircache.AlgorithmApprox, nil
	case "dist":
		return faircache.AlgorithmDistributed, nil
	case "hopc":
		return faircache.AlgorithmHopCount, nil
	case "cont":
		return faircache.AlgorithmContention, nil
	case "brtf":
		return faircache.AlgorithmOptimal, nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", name)
	}
}

// jsonReport is the machine-readable result schema of the -json flag.
type jsonReport struct {
	Algorithm        string         `json:"algorithm"`
	Nodes            int            `json:"nodes"`
	Links            int            `json:"links"`
	Producer         int            `json:"producer"`
	Chunks           int            `json:"chunks"`
	Capacity         int            `json:"capacity"`
	Holders          [][]int        `json:"holders"`
	Counts           []int          `json:"counts"`
	Copies           int            `json:"copies"`
	DistinctCaches   int            `json:"distinctCaches"`
	Gini             float64        `json:"gini"`
	Fairness75       float64        `json:"fairness75"`
	Access           float64        `json:"accessCost"`
	Dissemination    float64        `json:"disseminationCost"`
	Total            float64        `json:"totalCost"`
	AccessDelayMicro int64          `json:"accessDelayMicros"`
	ProvenOptimal    bool           `json:"provenOptimal,omitempty"`
	Messages         map[string]int `json:"messages,omitempty"`
}

func reportJSON(res *faircache.Result, topo *faircache.Topology) error {
	cost, err := res.ContentionCost()
	if err != nil {
		return err
	}
	pf, err := res.PercentileFairness(75)
	if err != nil {
		return err
	}
	out := jsonReport{
		Algorithm:        string(res.Algorithm),
		Nodes:            topo.NumNodes(),
		Links:            topo.NumLinks(),
		Producer:         res.Producer,
		Chunks:           res.Chunks,
		Capacity:         res.Capacity,
		Holders:          res.Holders,
		Counts:           res.Counts,
		Copies:           res.TotalCopies(),
		DistinctCaches:   res.DistinctCacheNodes(),
		Gini:             res.Gini(),
		Fairness75:       pf,
		Access:           cost.Access,
		Dissemination:    cost.Dissemination,
		Total:            cost.Total(),
		AccessDelayMicro: int64(cost.AccessDelay / time.Microsecond),
		ProvenOptimal:    res.ProvenOptimal,
		Messages:         res.Messages,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func buildTopology(grid string, randomN int, seed int64) (*faircache.Topology, error) {
	if randomN > 0 {
		return faircache.Random(randomN, seed)
	}
	parts := strings.SplitN(strings.ToLower(grid), "x", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad grid spec %q, want ROWSxCOLS", grid)
	}
	rows, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("bad grid rows %q", parts[0])
	}
	cols, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad grid cols %q", parts[1])
	}
	return faircache.Grid(rows, cols)
}

func report(res *faircache.Result, topo *faircache.Topology) error {
	fmt.Printf("algorithm   %s\n", res.Algorithm)
	fmt.Printf("network     %d nodes, %d links\n", topo.NumNodes(), topo.NumLinks())
	fmt.Printf("producer    node %d\n", res.Producer)
	fmt.Printf("chunks      %d (capacity %d per node)\n", res.Chunks, res.Capacity)
	if res.Algorithm == faircache.AlgorithmOptimal {
		fmt.Printf("optimal     proven=%v\n", res.ProvenOptimal)
	}
	fmt.Println()
	for n, holders := range res.Holders {
		fmt.Printf("chunk %d cached on %v\n", n, holders)
	}
	fmt.Println()
	fmt.Printf("copies      %d on %d distinct nodes\n", res.TotalCopies(), res.DistinctCacheNodes())
	fmt.Printf("gini        %.3f\n", res.Gini())
	if pf, err := res.PercentileFairness(75); err == nil {
		fmt.Printf("75-pct fair %.1f%% of nodes hold 75%% of data (ideal 75%%)\n", 100*pf)
	}
	cost, err := res.ContentionCost()
	if err != nil {
		return err
	}
	fmt.Printf("contention  access %.0f + dissemination %.0f = %.0f\n", cost.Access, cost.Dissemination, cost.Total())
	if res.Messages != nil {
		kinds := make([]string, 0, len(res.Messages))
		total := 0
		for k, v := range res.Messages {
			kinds = append(kinds, k)
			total += v
		}
		sort.Strings(kinds)
		fmt.Printf("messages    %d total:", total)
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, res.Messages[k])
		}
		fmt.Println()
	}
	return nil
}
