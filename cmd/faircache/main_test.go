package main

import (
	"context"
	"errors"
	"testing"

	faircache "repro"
)

func TestBuildTopology(t *testing.T) {
	topo, err := buildTopology("6x6", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 36 {
		t.Errorf("grid nodes = %d, want 36", topo.NumNodes())
	}
	topo, err = buildTopology("ignored", 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 30 {
		t.Errorf("random nodes = %d, want 30", topo.NumNodes())
	}
	for _, bad := range []string{"6", "ax6", "6xb", ""} {
		if _, err := buildTopology(bad, 0, 1); err == nil {
			t.Errorf("grid spec %q: want error", bad)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run(context.Background(), "nope", "3x3", 0, 1, -1, 1, 5, 2, 0, 0, false); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestRunSmokeTextAndJSON(t *testing.T) {
	// Output goes to stdout; only success/failure is asserted here.
	if err := run(context.Background(), "appx", "4x4", 0, 1, -1, 2, 5, 2, 0, 0, false); err != nil {
		t.Errorf("text run: %v", err)
	}
	if err := run(context.Background(), "dist", "4x4", 0, 1, -1, 1, 5, 2, 0, 0, true); err != nil {
		t.Errorf("json run: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "appx", "4x4", 0, 1, -1, 2, 5, 2, 0, 0, false)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: err = %v, want context.Canceled", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	alg, err := parseAlgorithm("BRTF")
	if err != nil || alg != faircache.AlgorithmOptimal {
		t.Errorf("parseAlgorithm(BRTF) = %v, %v", alg, err)
	}
}
