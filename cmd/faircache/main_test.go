package main

import "testing"

func TestBuildTopology(t *testing.T) {
	topo, err := buildTopology("6x6", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 36 {
		t.Errorf("grid nodes = %d, want 36", topo.NumNodes())
	}
	topo, err = buildTopology("ignored", 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 30 {
		t.Errorf("random nodes = %d, want 30", topo.NumNodes())
	}
	for _, bad := range []string{"6", "ax6", "6xb", ""} {
		if _, err := buildTopology(bad, 0, 1); err == nil {
			t.Errorf("grid spec %q: want error", bad)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run("nope", "3x3", 0, 1, -1, 1, 5, 2, 0, 0, false); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestRunSmokeTextAndJSON(t *testing.T) {
	// Output goes to stdout; only success/failure is asserted here.
	if err := run("appx", "4x4", 0, 1, -1, 2, 5, 2, 0, 0, false); err != nil {
		t.Errorf("text run: %v", err)
	}
	if err := run("dist", "4x4", 0, 1, -1, 1, 5, 2, 0, 0, true); err != nil {
		t.Errorf("json run: %v", err)
	}
}
