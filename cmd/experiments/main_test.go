package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureRun executes run(fig, quick) with stdout captured.
func captureRun(t *testing.T, fig string, quick bool) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		buf, _ := io.ReadAll(r)
		outCh <- string(buf)
	}()
	runErr := run(fig, quick)
	w.Close()
	os.Stdout = old
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run(%q, quick=%v): %v", fig, quick, runErr)
	}
	return out
}

// TestFigureBuildersSmoke runs a representative set of the figure
// builders in -quick mode (tiny topologies, reduced budgets) and asserts
// each emits a non-empty markdown table under its header.
func TestFigureBuildersSmoke(t *testing.T) {
	cases := map[string]string{
		"3":     "Fig. 3",
		"6":     "Fig. 6",
		"tab2":  "TABLE II",
		"abl":   "Ablations",
		"adapt": "Adaptive caching",
	}
	for fig, wantHeader := range cases {
		out := captureRun(t, fig, true)
		if !strings.Contains(out, wantHeader) {
			t.Errorf("fig %s: output missing header %q:\n%s", fig, wantHeader, out)
		}
		dataRows := 0
		for _, line := range strings.Split(out, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "|") && !strings.HasPrefix(trimmed, "| ---") {
				dataRows++
			}
		}
		// Header row plus at least one data row.
		if dataRows < 2 {
			t.Errorf("fig %s: no table rows in output:\n%s", fig, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", true); err == nil {
		t.Fatal("run with unknown figure should fail")
	}
}
