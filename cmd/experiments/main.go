// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. V) and prints them as markdown tables, suitable
// for pasting into EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-fig all|1|2|3|4|5|6|7|8|9|tab2|abl|part|adapt|phases] [-quick]
//	            [-algs appx,dist]
//
// -quick shrinks network sizes and search budgets for a fast smoke run.
// -algs restricts the comparison columns to a comma-separated algorithm
// list; names go through faircache.ParseAlgorithm, so legacy aliases
// ("approximate", "hopcount", ...) work and columns print canonically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	faircache "repro"

	"repro/internal/eval"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1-9, tab2, abl, part, adapt, phases")
	quick := flag.Bool("quick", false, "use reduced sizes and budgets")
	algs := flag.String("algs", "", "comma-separated algorithm filter (canonical names or legacy aliases, e.g. appx,dist)")
	flag.Parse()

	if err := applyAlgFilter(*algs); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if err := run(*fig, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// applyAlgFilter narrows eval.Algorithms to the requested set, keeping
// the canonical presentation order and rejecting unknown names up front.
func applyAlgFilter(spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	want := map[faircache.Algorithm]bool{}
	for _, part := range strings.Split(spec, ",") {
		alg, err := faircache.ParseAlgorithm(part)
		if err != nil {
			return fmt.Errorf("-algs: %w", err)
		}
		want[alg] = true
	}
	filtered := make([]faircache.Algorithm, 0, len(eval.Algorithms))
	for _, a := range eval.Algorithms {
		if want[a] {
			filtered = append(filtered, a)
		}
	}
	if len(filtered) == 0 {
		return fmt.Errorf("-algs %q selects none of the comparison algorithms", spec)
	}
	eval.Algorithms = filtered
	return nil
}

type config struct {
	quick bool
}

func run(fig string, quick bool) error {
	c := config{quick: quick}
	runners := map[string]func() error{
		"1":      c.fig1,
		"2":      c.fig2,
		"3":      c.fig3,
		"4":      c.fig4,
		"5":      c.fig5,
		"6":      c.fig6,
		"7":      c.fig7,
		"8":      c.fig8,
		"9":      c.fig9,
		"tab2":   c.table2,
		"abl":    c.ablations,
		"part":   c.partitioned,
		"adapt":  c.adaptive,
		"phases": c.phases,
	}
	if fig != "all" {
		r, ok := runners[fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		return r()
	}
	for _, key := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "tab2", "abl", "part", "adapt", "phases"} {
		if err := runners[key](); err != nil {
			return fmt.Errorf("fig %s: %w", key, err)
		}
	}
	return nil
}

// scenario returns the paper's defaults, with a budgeted optimal search
// (the pure-Go exact solver replaces PuLP; budgets keep it tractable and
// the proven/best-found distinction is printed).
func (c config) scenario() eval.Scenario {
	sc := eval.DefaultScenario()
	sc.OptimalBudget = 20000
	sc.OptimalWidth = 8
	if c.quick {
		sc.OptimalBudget = 1000
		sc.Seeds = []int64{1, 2}
	}
	return sc
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

func algColumns() []string {
	cols := make([]string, 0, len(eval.Algorithms))
	for _, a := range eval.Algorithms {
		cols = append(cols, a.String())
	}
	return cols
}

func printTable(headers []string, rows [][]string) {
	fmt.Println("| " + strings.Join(headers, " | ") + " |")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
}

func (c config) fig1() error {
	header("Fig. 1 — per-node chunk-count difference vs optimal (6×6 grid, producer 9)")
	sc := c.scenario()
	sc.OptimalBudget = 4000
	if c.quick {
		sc.OptimalBudget = 500
	}
	side := 6
	if c.quick {
		side = 4
	}
	// The exact 6×6 search is budgeted (PuLP-replacement B&B with subset
	// width 8); the reference optimality flag is printed below.
	fig, err := eval.RunFig1(side, side, sc)
	if err != nil {
		return err
	}
	fmt.Printf("reference proven optimal: %v (budget %d nodes, width 8)\n\n", fig.ReferenceOptimal, sc.OptimalBudget)
	headers := append([]string{"node", "Brtf count"}, algColumns()...)
	var rows [][]string
	for v := 0; v < side*side; v++ {
		row := []string{fmt.Sprint(v), fmt.Sprint(fig.Reference[v])}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%+d", fig.Diff[alg][v]))
		}
		rows = append(rows, row)
	}
	printTable(headers, rows)
	// Summary: total absolute deviation per algorithm.
	fmt.Println()
	for _, alg := range eval.Algorithms {
		total := 0
		for _, d := range fig.Diff[alg] {
			if d < 0 {
				total -= d
			} else {
				total += d
			}
		}
		fmt.Printf("total |diff| %s: %d\n", alg, total)
	}
	return nil
}

func (c config) fig2() error {
	sc := c.scenario()
	header("Fig. 2(a) — total contention cost, small grids (with Brtf)")
	small := []int{3, 4, 5}
	if c.quick {
		small = []int{3, 4}
	}
	rows, err := eval.RunFig2Small(small, sc)
	if err != nil {
		return err
	}
	headers := append([]string{"nodes"}, algColumns()...)
	headers = append(headers, "Brtf", "Brtf proven")
	var out [][]string
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%.0f", r.Total[alg]))
		}
		row = append(row, fmt.Sprintf("%.0f", r.Optimal), fmt.Sprint(r.OptimalProven))
		out = append(out, row)
	}
	printTable(headers, out)

	header("Fig. 2(b) — total contention cost, large grids (100–256 nodes)")
	large := []int{10, 12, 14, 16}
	if c.quick {
		large = []int{8}
	}
	rows, err = eval.RunFig2Large(large, sc)
	if err != nil {
		return err
	}
	out = nil
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%.0f", r.Total[alg]))
		}
		out = append(out, row)
	}
	printTable(append([]string{"nodes"}, algColumns()...), out)
	return nil
}

func (c config) fig3() error {
	header("Fig. 3 — distributed algorithm contention cost vs hop limit (6×6 grid)")
	sc := c.scenario()
	maxK := 5
	if c.quick {
		maxK = 3
	}
	rows, err := eval.RunFig3(6, 6, maxK, sc)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.HopLimit),
			fmt.Sprintf("%.0f", r.Access),
			fmt.Sprintf("%.0f", r.Dissemination),
			fmt.Sprintf("%.0f", r.Total()),
		})
	}
	printTable([]string{"hop limit", "access", "dissemination", "total"}, out)
	return nil
}

func (c config) fig4() error {
	header("Fig. 4 — total contention cost on random networks (avg over seeds)")
	sc := c.scenario()
	sizes := []int{20, 60, 100, 140, 180}
	if c.quick {
		sizes = []int{20, 40}
	}
	rows, err := eval.RunFig4(sizes, sc)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%.0f", r.Total[alg]))
		}
		out = append(out, row)
	}
	printTable(append([]string{"nodes"}, algColumns()...), out)
	return nil
}

func (c config) fig5() error {
	header("Fig. 5 — running time to place one chunk on grids")
	sc := c.scenario()
	sides := []int{4, 6, 8, 10, 12}
	if c.quick {
		sides = []int{4, 6}
	}
	rows, err := eval.RunFig5(sides, sc)
	if err != nil {
		return err
	}
	headers := []string{"nodes"}
	for _, alg := range eval.Algorithms {
		if alg == faircache.AlgorithmDistributed {
			continue
		}
		headers = append(headers, string(alg))
	}
	var out [][]string
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			if alg == faircache.AlgorithmDistributed {
				continue
			}
			row = append(row, r.Elapsed[alg].Round(10*time.Microsecond).String())
		}
		out = append(out, row)
	}
	printTable(headers, out)
	return nil
}

func (c config) fig6() error {
	header("Fig. 6 — storage concentration (6×6 grid) and 75-percentile fairness")
	sc := c.scenario()
	fig, err := eval.RunFig6(6, 6, sc)
	if err != nil {
		return err
	}
	// Nodes needed for 25/50/75/100% of data.
	var out [][]string
	for _, alg := range eval.Algorithms {
		curve := fig.Curve[alg]
		row := []string{string(alg)}
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			k := 0
			for i, v := range curve {
				if v >= frac-1e-9 {
					k = i + 1
					break
				}
			}
			row = append(row, fmt.Sprint(k))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*fig.Percentile75[alg]))
		out = append(out, row)
	}
	printTable([]string{"algorithm", "nodes for 25%", "50%", "75%", "100%", "75-pct fairness"}, out)
	return nil
}

func (c config) fig7() error {
	sc := c.scenario()
	header("Fig. 7(a) — Gini coefficient on grids")
	sides := []int{4, 6, 8, 10}
	if c.quick {
		sides = []int{4, 6}
	}
	rows, err := eval.RunFig7Grid(sides, sc)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%.3f", r.Gini[alg]))
		}
		out = append(out, row)
	}
	printTable(append([]string{"nodes"}, algColumns()...), out)

	header("Fig. 7(b) — Gini coefficient on random networks (avg over seeds)")
	sizes := []int{20, 60, 100, 140, 180}
	if c.quick {
		sizes = []int{20, 40}
	}
	rows, err = eval.RunFig7Random(sizes, sc)
	if err != nil {
		return err
	}
	out = nil
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Nodes)}
		for _, alg := range eval.Algorithms {
			row = append(row, fmt.Sprintf("%.3f", r.Gini[alg]))
		}
		out = append(out, row)
	}
	printTable(append([]string{"nodes"}, algColumns()...), out)
	return nil
}

func (c config) fig8() error {
	sc := c.scenario()
	maxChunks := 10
	if c.quick {
		maxChunks = 6
	}
	for _, side := range []int{4, 8} {
		header(fmt.Sprintf("Fig. 8 — accumulated contention cost vs distinct chunks (%d×%d grid)", side, side))
		rows, err := eval.RunFig8(side, side, maxChunks, sc)
		if err != nil {
			return err
		}
		var out [][]string
		for _, r := range rows {
			row := []string{fmt.Sprint(r.Chunks)}
			for _, alg := range eval.Algorithms {
				row = append(row, fmt.Sprintf("%.0f", r.Total[alg]))
			}
			out = append(out, row)
		}
		printTable(append([]string{"chunks"}, algColumns()...), out)
	}
	return nil
}

func (c config) fig9() error {
	sc := c.scenario()
	for _, side := range []int{4, 6} {
		header(fmt.Sprintf("Fig. 9 — per-chunk contention cost, 10 chunks (%d×%d grid)", side, side))
		fig, err := eval.RunFig9(side, side, 10, sc)
		if err != nil {
			return err
		}
		var out [][]string
		for n := 0; n < 10; n++ {
			row := []string{fmt.Sprint(n + 1)}
			for _, alg := range eval.Algorithms {
				row = append(row, fmt.Sprintf("%.0f", fig.PerChunk[alg][n]))
			}
			out = append(out, row)
		}
		printTable(append([]string{"chunk"}, algColumns()...), out)
	}
	return nil
}

func (c config) table2() error {
	header("TABLE II / Sec. IV-D — distributed protocol message counts (6×6 grid)")
	sc := c.scenario()
	tab, err := eval.RunTable2(6, 6, sc)
	if err != nil {
		return err
	}
	kinds := make([]string, 0, len(tab.Counts))
	for k := range tab.Counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var out [][]string
	for _, k := range kinds {
		out = append(out, []string{k, fmt.Sprint(tab.Counts[k])})
	}
	out = append(out, []string{"total", fmt.Sprint(tab.Total)})
	printTable([]string{"message", "count"}, out)
	fmt.Printf("\nO(QN+N²) bound: %d messages ≤ %d: %v\n", tab.Total, tab.Bound, tab.WithinBound)
	return nil
}

// partitioned prints the sharded-vs-global comparison: the cost-error
// factor the boundary stitch achieves and the peak-matrix saving, per
// topology model.
func (c config) partitioned() error {
	header("Sharded solves — partitioned vs global (Options.Partition)")
	cases, err := eval.DefaultPartitionedCases()
	if err != nil {
		return err
	}
	if c.quick {
		cases = cases[:1]
	}
	rows, err := eval.RunPartitioned(cases, c.scenario())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.Regions),
			fmt.Sprintf("%.0f", r.GlobalCost),
			fmt.Sprintf("%.0f", r.ShardedCost),
			fmt.Sprintf("%.3f", r.Ratio),
			fmt.Sprintf("%.1f", r.GlobalMs),
			fmt.Sprintf("%.1f", r.ShardedMs),
			fmt.Sprint(r.DroppedCopies),
			fmt.Sprintf("%.1f%%", 100*float64(r.MatrixCells)/float64(r.FullMatrixCells)),
		})
	}
	printTable([]string{"topology", "nodes", "regions", "global cost", "sharded cost", "ratio", "global ms", "sharded ms", "dropped", "matrix cells vs N²"}, out)
	return nil
}

func (c config) adaptive() error {
	header("Adaptive caching — 1M-request Zipf trace replay (15×15 grid)")
	sc := eval.AdaptiveScenario{}
	if c.quick {
		sc.Rows, sc.Cols = 9, 9
		sc.Chunks = 48
		sc.Requests = 100_000
		sc.AdaptEvery = 5_000
	}
	rows, err := eval.RunAdaptive(sc)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%.4f", r.HitRate),
			fmt.Sprintf("%.4f", r.CacheRate),
			fmt.Sprintf("%.3f", r.MeanCost),
			fmt.Sprintf("%.0f", r.P99Cost),
			fmt.Sprintf("%.3f", r.GiniMean),
			fmt.Sprintf("%.3f", r.GiniFinal),
			fmt.Sprint(r.Evictions),
			fmt.Sprint(r.Adaptations),
			fmt.Sprint(r.CopiesPlaced),
			fmt.Sprintf("%.0f", r.Ms),
		})
	}
	printTable([]string{"policy", "hit-rate", "cache-rate", "mean cost", "p99 cost", "gini mean", "gini final", "evictions", "adaptations", "copies placed", "ms"}, out)
	return nil
}

func (c config) ablations() error {
	header("Ablations — DESIGN.md §5 design knobs (6×6 grid, 10 chunks)")
	rows, err := eval.RunAblations(c.scenario())
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Gini),
			fmt.Sprint(r.DistinctCaches),
			fmt.Sprintf("%.0f", r.Total),
			fmt.Sprintf("%.0f", r.Dissemination),
		})
	}
	printTable([]string{"configuration", "gini", "distinct caches", "total cost", "dissemination"}, out)
	return nil
}

// phases runs one explain'd Fig-1 solve (6×6 grid, producer 9, the
// paper's 5 chunks) and prints its per-phase trace breakdown: where the
// approximation's wall-clock goes (cost-model build, ConFL dual growth,
// Steiner connection, per-chunk placement) plus each phase's summed
// counters. Quick mode shrinks the grid like fig1 does.
func (c config) phases() error {
	header("Phase breakdown — one explain'd Appx solve (Fig. 1 configuration)")
	side := 6
	if c.quick {
		side = 4
	}
	sc := c.scenario()
	topo, err := faircache.Grid(side, side)
	if err != nil {
		return err
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		return err
	}
	producer := 9 // the paper's Fig. 1 producer
	if producer >= topo.NumNodes() {
		producer = topo.CentralNode()
	}
	res, err := solver.Solve(context.Background(), faircache.Request{
		Producer: producer,
		Chunks:   sc.Chunks,
		Options:  &faircache.Options{Capacity: sc.Capacity, Explain: true},
	})
	if err != nil {
		return err
	}
	rep := res.Trace
	if rep == nil {
		return fmt.Errorf("explain solve returned no trace")
	}
	fmt.Printf("trace %s: %d spans, %.2f ms total\n\n", rep.TraceID, rep.Spans, rep.TotalMs)
	var rows [][]string
	for _, ph := range rep.Phases {
		counters := make([]string, 0, len(ph.Counters))
		for k, v := range ph.Counters {
			counters = append(counters, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(counters)
		rows = append(rows, []string{
			ph.Phase,
			fmt.Sprint(ph.Count),
			fmt.Sprintf("%.3f", ph.TotalMs),
			fmt.Sprintf("%.1f%%", 100*ph.TotalMs/rep.TotalMs),
			strings.Join(counters, ", "),
		})
	}
	printTable([]string{"phase", "spans", "total ms", "% of solve", "counters"}, rows)
	fmt.Println("\nPhases nest (a chunk span contains its confl and steiner spans), so percentages do not sum to 100.")
	return nil
}
