// Quickstart: place five data chunks fairly on a 6×6 grid of edge devices
// — the exact scenario of the paper's evaluation — and inspect fairness
// and contention metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	faircache "repro"
)

func main() {
	// A 6×6 grid of edge devices; node 9 produces the data (e.g. a
	// camera filming a commencement ceremony). Every device wants every
	// chunk, and each can spare storage for 5 chunks.
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}

	const (
		producer = 9
		chunks   = 5
	)
	// A Solver binds the topology once; Solve takes a context, so a
	// real deployment can attach deadlines or cancellation.
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	result, err := solver.Solve(ctx, faircache.Request{Producer: producer, Chunks: chunks})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fair caching placement (approximation algorithm)")
	for n, holders := range result.Holders {
		fmt.Printf("  chunk %d -> nodes %v\n", n, holders)
	}

	fmt.Printf("\n%d copies spread over %d of %d devices\n",
		result.TotalCopies(), result.DistinctCacheNodes(), topo.NumNodes())

	// Fairness: the Gini coefficient of per-device caching load (0 =
	// perfectly even) and the paper's 75-percentile fairness.
	fmt.Printf("gini coefficient: %.3f (paper target: < 0.4)\n", result.Gini())
	pf, err := result.PercentileFairness(75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("75%% of data sits on %.1f%% of devices (100%% fair would be 75%%)\n", 100*pf)

	// Latency proxy: contention cost of the accessing and dissemination
	// phases.
	cost, err := result.ContentionCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contention cost: access %.0f + dissemination %.0f = %.0f\n",
		cost.Access, cost.Dissemination, cost.Total())

	// Compare with the hop-count baseline: much lower fairness, higher
	// contention, because it concentrates every chunk on the same nodes.
	// The same solver answers any algorithm — just change the request.
	hop, err := solver.Solve(ctx, faircache.Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: faircache.AlgorithmHopCount,
	})
	if err != nil {
		log.Fatal(err)
	}
	hopCost, err := hop.ContentionCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhop-count baseline for contrast: gini %.3f, contention %.0f\n",
		hop.Gini(), hopCost.Total())
}
