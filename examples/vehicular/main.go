// Vehicular: connected vehicles and road-side units share traffic-scene
// chunks (dashcam clips, hazard reports). Vehicle storage is scarcer than
// a phone's photo cache and topology is sparser, so the example uses a
// smaller per-node capacity and studies how the fair placement copes as
// the data volume grows past a single node set's capacity — the multi-item
// regime of the paper's Fig. 8.
//
// Run with:
//
//	go run ./examples/vehicular
package main

import (
	"context"
	"fmt"
	"log"

	faircache "repro"
)

func main() {
	// 60 vehicles + road-side units on a stretch of road network.
	const vehicles = 60
	topo, err := faircache.Random(vehicles, 7)
	if err != nil {
		log.Fatal(err)
	}
	producer := topo.CentralNode() // the road-side camera unit
	fmt.Printf("vehicular mesh: %d nodes, %d links, road-side producer %d\n\n",
		topo.NumNodes(), topo.NumLinks(), producer)

	// One Solver answers the whole sweep, reusing the topology's
	// shortest-path structure between runs.
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Capacity 3 chunks per vehicle; the data item grows 2 -> 8 chunks.
	opts := &faircache.Options{Capacity: 3}
	fmt.Printf("%-8s %14s %14s %12s %8s\n", "chunks", "Appx cost", "Cont cost", "Appx copies", "gini")
	for chunks := 2; chunks <= 8; chunks += 2 {
		appx, err := solver.Solve(ctx, faircache.Request{
			Producer: producer,
			Chunks:   chunks,
			Options:  opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		appxCost, err := appx.ContentionCost()
		if err != nil {
			log.Fatal(err)
		}
		cont, err := solver.Solve(ctx, faircache.Request{
			Producer:  producer,
			Chunks:    chunks,
			Algorithm: faircache.AlgorithmContention,
			Options:   opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		contCost, err := cont.ContentionCost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14.0f %14.0f %12d %8.3f\n",
			chunks, appxCost.Total(), contCost.Total(), appx.TotalCopies(), appx.Gini())
	}

	fmt.Println("\nthe fair placement keeps recruiting fresh vehicles as chunks")
	fmt.Println("accumulate; the baseline refills the same vehicles until their")
	fmt.Println("storage is exhausted and must jump to a whole new set.")
}
