// Distributed: a close-up of the paper's Algorithm 2 — the message-driven
// protocol in which devices with no global topology knowledge elect
// caching (ADMIN) nodes by exchanging NPI / CC / TIGHT / SPAN / FREEZE /
// NADMIN / BADMIN messages within a bounded hop range.
//
// The example sweeps the hop limit k and prints message counts per type
// (TABLE II) so the overhead/quality trade-off behind the paper's choice
// of k = 2 is visible.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	faircache "repro"
)

func main() {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const (
		producer = 9
		chunks   = 5
	)

	fmt.Println("distributed fair caching on a 6x6 grid, 5 chunks, producer 9")
	fmt.Printf("\n%-4s %10s %10s %10s %10s\n", "k", "caches", "gini", "cost", "messages")
	for k := 1; k <= 4; k++ {
		res, err := solver.Solve(ctx, faircache.Request{
			Producer:  producer,
			Chunks:    chunks,
			Algorithm: faircache.AlgorithmDistributed,
			Options:   &faircache.Options{HopLimit: k},
		})
		if err != nil {
			log.Fatal(err)
		}
		cost, err := res.ContentionCost()
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, v := range res.Messages {
			total += v
		}
		fmt.Printf("%-4d %10d %10.3f %10.0f %10d\n",
			k, res.DistinctCacheNodes(), res.Gini(), cost.Total(), total)
	}

	// Detailed message accounting for the paper's default k = 2.
	res, err := solver.Solve(ctx, faircache.Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: faircache.AlgorithmDistributed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmessage breakdown at k = 2 (TABLE II message types):")
	kinds := make([]string, 0, len(res.Messages))
	for kind := range res.Messages {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Printf("  %-8s %6d\n", kind, res.Messages[kind])
	}

	fmt.Println("\nk = 1 gives devices too little information (higher cost, fewer,")
	fmt.Println("worse-placed caches); k >= 2 is flat while message overhead keeps")
	fmt.Println("growing — which is why the paper settles on 2-hop exchanges.")
}
