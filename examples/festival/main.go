// Festival: the paper's motivating scenario — a large outdoor public
// event where smartphones share sensing data (photos, food-stand queue
// info, video clips of memorable moments) over a dense ad-hoc network.
//
// The example compares all four algorithms on the same crowd topology and
// shows why fairness matters: with the baselines, a handful of phones
// carry the entire caching burden (and their owners would opt out),
// while the fair algorithms spread the load with similar latency.
//
// Run with:
//
//	go run ./examples/festival
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	faircache "repro"
)

func main() {
	// 120 festival attendees in a plaza; radio range yields a connected
	// multi-hop mesh. The stage camera (most central phone) produces 5
	// video chunks that everyone wants.
	const attendees = 120
	topo, err := faircache.Random(attendees, 2026)
	if err != nil {
		log.Fatal(err)
	}
	producer := topo.CentralNode()
	fmt.Printf("festival mesh: %d phones, %d radio links, producer at node %d\n\n",
		topo.NumNodes(), topo.NumLinks(), producer)

	// One Solver serves all four algorithm runs; the shared context puts
	// a ceiling on the whole comparison.
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const chunks = 5
	type entry struct {
		name string
		alg  faircache.Algorithm
	}
	runs := []entry{
		{"fair approximation (Appx)", faircache.AlgorithmApprox},
		{"fair distributed (Dist)", faircache.AlgorithmDistributed},
		{"hop-count baseline (Hopc)", faircache.AlgorithmHopCount},
		{"contention baseline (Cont)", faircache.AlgorithmContention},
	}

	fmt.Printf("%-28s %8s %8s %10s %12s\n", "algorithm", "phones", "gini", "max load", "contention")
	for _, e := range runs {
		res, err := solver.Solve(ctx, faircache.Request{
			Producer:  producer,
			Chunks:    chunks,
			Algorithm: e.alg,
		})
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		cost, err := res.ContentionCost()
		if err != nil {
			log.Fatal(err)
		}
		maxLoad := 0
		for _, c := range res.Counts {
			if c > maxLoad {
				maxLoad = c
			}
		}
		fmt.Printf("%-28s %8d %8.3f %7d/%-2d %12.0f\n",
			e.name, res.DistinctCacheNodes(), res.Gini(), maxLoad, res.Capacity, cost.Total())
	}

	fmt.Println("\nreading the table: the fair algorithms recruit many phones with")
	fmt.Println("light per-phone load (low gini), while the baselines exhaust the")
	fmt.Println("storage of a few central phones — whose owners would stop sharing.")
}
