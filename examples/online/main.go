// Online: the paper's future-work direction made concrete — a long-lived
// edge deployment where sensing chunks are published continuously, stale
// chunks expire (cache replacement), and each arrival is placed by one
// fair-caching iteration against the live storage state.
//
// The example streams 30 publications through a 6×6 mesh and shows that
// storage is recycled without deadlock and the cumulative caching load
// stays fair over the whole horizon.
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	faircache "repro"
)

func main() {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := faircache.NewOnline(topo, 9, &faircache.Options{
		Capacity: 4,
		ChunkTTL: 4, // a chunk stays relevant for four publications
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("online fair caching: 30 publications, capacity 4, TTL 4")
	fmt.Printf("\n%-6s %-8s %-22s %s\n", "time", "chunk", "cached on", "expired")

	// Each publication is one cancellable placement: a deployment would
	// attach its request deadline here.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	tally := make([]int, topo.NumNodes())
	for i := 0; i < 30; i++ {
		pub, err := sys.PublishCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range pub.CacheNodes {
			tally[v]++
		}
		if pub.Time <= 8 || len(pub.Expired) > 0 && pub.Time <= 12 {
			fmt.Printf("%-6d %-8d %-22s %v\n", pub.Time, pub.Chunk, fmt.Sprint(pub.CacheNodes), pub.Expired)
		}
	}

	fmt.Printf("\nafter 30 publications: %d chunks live, instantaneous gini %.3f\n",
		len(sys.Live()), sys.Gini())

	busiest, total := 0, 0
	for _, c := range tally {
		total += c
		if c > busiest {
			busiest = c
		}
	}
	fmt.Printf("cumulative assignments: %d total, busiest node took %d (%.0f%%)\n",
		total, busiest, 100*float64(busiest)/float64(total))
	fmt.Println("\neviction frees storage and lowers fairness costs, so the same")
	fmt.Println("devices are re-eligible later — the load stays fair indefinitely.")
}
