// Package faircache is a fair caching library for peer data sharing in
// pervasive edge computing environments, reproducing the system of
// Huang et al., "Fair Caching Algorithms for Peer Data Sharing in
// Pervasive Edge Computing Environments" (ICDCS 2017).
//
// Edge devices in a multi-hop wireless network want to share data chunks
// originating at a producer device. Caching chunks on peer devices
// improves availability and latency, but because every device belongs to a
// different owner, the caching load must be fair. This package places
// chunks so as to minimise a joint objective of per-node Fairness Degree
// Cost (storage pressure), path contention cost for the accessing phase,
// and Steiner-tree contention cost for the dissemination phase — the sum
// of per-chunk Connected Facility Location problems.
//
// Four placement algorithms are provided:
//
//   - Approximate: the paper's primal-dual approximation algorithm
//     (Algorithm 1), preserving the 6.55 approximation ratio.
//   - Distribute: the paper's distributed protocol (Algorithm 2) in which
//     devices exchange NPI/CC/TIGHT/SPAN/FREEZE/NADMIN/BADMIN messages
//     within a bounded hop range.
//   - HopCountBaseline and ContentionBaseline: the two wireless caching
//     baselines the paper compares against ([13] and [4]), including the
//     multi-item subgraph extension of Sec. V-B.
//   - Optimal: an exact branch-and-bound solver standing in for the
//     paper's brute-force (PuLP) reference on small networks.
//
// Results expose the paper's evaluation metrics: total contention cost
// split by phase, Gini coefficient, p-percentile fairness and the storage
// concentration curve.
package faircache

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Topology is a connected multi-hop wireless network over nodes 0..N-1.
type Topology struct {
	g *graph.Graph
	// gridRows/gridCols record the shape of a Grid-built topology (0
	// otherwise) so the partitioner can use exact tile cuts on grids.
	gridRows, gridCols int
}

// Errors returned by topology constructors and solvers. ErrNotConnected
// is itself an ErrBadArgument (errors.Is matches both), since a
// disconnected topology is invalid input everywhere it can appear.
var (
	ErrBadArgument  = errors.New("faircache: bad argument")
	ErrNotConnected = fmt.Errorf("%w: topology must be connected", ErrBadArgument)
)

// Grid returns a rows×cols grid topology, the primary network model of
// the paper's evaluation. Nodes are numbered row-major.
func Grid(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("%w: grid %dx%d too small", ErrBadArgument, rows, cols)
	}
	return &Topology{g: graph.NewGrid(rows, cols), gridRows: rows, gridCols: cols}, nil
}

// Random returns a connected random geometric topology of n nodes in the
// unit square with the standard connectivity radius, seeded
// deterministically — the paper's "random network" model.
func Random(n int, seed int64) (*Topology, error) {
	return RandomWithRadius(n, graph.DefaultRadius(n), seed)
}

// RandomWithRadius is Random with an explicit connectivity radius.
func RandomWithRadius(n int, radius float64, seed int64) (*Topology, error) {
	rg := graph.RandomGeometric{N: n, Radius: radius}
	g, _, err := rg.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return &Topology{g: g}, nil
}

// Line returns a path topology 0-1-...-(n-1), e.g. vehicles along a road.
func Line(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: line needs at least 2 nodes, got %d", ErrBadArgument, n)
	}
	return &Topology{g: graph.NewLine(n)}, nil
}

// Ring returns a cycle topology over n nodes (n >= 3).
func Ring(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: ring needs at least 3 nodes, got %d", ErrBadArgument, n)
	}
	return &Topology{g: graph.NewRing(n)}, nil
}

// Clustered returns a crowd topology: `clusters` dense groups of `size`
// devices each, joined by sparse bridges — the structure of the paper's
// outdoor-event scenario (groups around stages and food stands).
func Clustered(clusters, size int, seed int64) (*Topology, error) {
	c := graph.Clustered{
		Clusters:  clusters,
		Size:      size,
		IntraProb: 0.4,
		Bridges:   2,
	}
	g, err := c.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return &Topology{g: g}, nil
}

// FromLinks builds a topology from an explicit link list.
func FromLinks(n int, links [][2]int) (*Topology, error) {
	g := graph.New(n)
	for _, l := range links {
		if err := g.AddEdge(l[0], l[1]); err != nil {
			return nil, fmt.Errorf("faircache: %w", err)
		}
	}
	if !g.Connected() {
		return nil, ErrNotConnected
	}
	return &Topology{g: g}, nil
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return t.g.NumNodes() }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return t.g.NumEdges() }

// Degree returns a node's neighbor count (its node contention cost).
func (t *Topology) Degree(v int) int { return t.g.Degree(v) }

// Neighbors returns a copy of a node's neighbor list.
func (t *Topology) Neighbors(v int) []int {
	return append([]int(nil), t.g.Neighbors(v)...)
}

// CentralNode returns the node with minimum total hop distance to all
// others — a natural producer choice on random topologies.
func (t *Topology) CentralNode() int { return graph.CentralNode(t.g) }

// HopDistances returns the BFS hop distance from src to every node
// (0 for src itself). It is the routing metric a placement service needs
// to answer "which holder is nearest to this requester".
func (t *Topology) HopDistances(src int) ([]int, error) {
	if src < 0 || src >= t.g.NumNodes() {
		return nil, fmt.Errorf("%w: node %d out of range [0,%d)", ErrBadArgument, src, t.g.NumNodes())
	}
	return t.g.HopDistances(src), nil
}

// Options tunes the placement algorithms. The zero value means "paper
// defaults" for every field.
type Options struct {
	// Capacity is the per-node cache capacity in chunks (default 5, the
	// paper's setting).
	Capacity int
	// Capacities, when non-nil, sets heterogeneous per-node capacities
	// and overrides Capacity (devices contribute different amounts of
	// storage — the fairness model's motivating setting).
	Capacities []int
	// AlphaStep is U_α, the dual connection-bid increment (default 1).
	AlphaStep float64
	// GammaStep is U_γ, the relay-bid increment (default: calibrated
	// 2.5 centralized / 2 distributed).
	GammaStep float64
	// SpanQuorum is M, the SPAN support needed to open a caching node
	// (default 2).
	SpanQuorum int
	// FairnessWeight scales the Fairness Degree Cost term (default 1;
	// set negative to request 0 for contention-only ablations).
	FairnessWeight float64
	// HopLimit bounds distributed control messages (default 2); used
	// only by Distribute.
	HopLimit int
	// Lambda is the per-cache cost of the baselines; 0 selects the
	// calibrated RecommendedLambda. Used only by the baselines.
	Lambda float64
	// SearchBudget caps the exact solver's branch-and-bound nodes per
	// chunk (0 = exhaustive). Used only by Optimal.
	SearchBudget int
	// SearchWidth caps the exact solver's caching-set size per chunk
	// (0 = the exact Steiner routine's limit). Used only by Optimal.
	SearchWidth int
	// BatteryLevels holds per-node battery levels in (0, 1] for the
	// battery-fairness extension (paper footnote 1); nil means all full.
	// Only meaningful with BatteryWeight > 0.
	BatteryLevels []float64
	// BatteryWeight scales the battery Fairness Degree Cost in the
	// weighted summation with the storage term (default 0: disabled).
	BatteryWeight float64
	// ChunkTTL is the online system's chunk lifetime, measured in
	// subsequent publications: a chunk published at time t expires before
	// the publication at t + ChunkTTL. Used only by NewOnline.
	//
	// The value maps onto the internal online TTL as follows:
	//
	//	ChunkTTL = 0   default: one capacity-worth of publications
	//	               (a chunk lives for Capacity arrivals)
	//	ChunkTTL > 0   exactly that many publications; ChunkTTL = 1 means
	//	               a chunk is evicted at the very next publication
	//	ChunkTTL < 0   chunks never expire (internally encoded as TTL = 0,
	//	               the online package's "no expiry" sentinel)
	//
	// Note the inversion: the *public* zero value asks for the default,
	// while the *internal* zero value means "never expire" — NewOnline
	// performs the translation so callers only ever see the public
	// semantics above.
	ChunkTTL int
	// GreedyConFL switches the centralized algorithm's per-chunk solver
	// to the guarantee-free greedy heuristic (related work [23]) — an
	// ablation against the default primal-dual algorithm.
	GreedyConFL bool
	// ImproveSteiner applies key-path local search to the centralized
	// algorithm's dissemination trees after the MST 2-approximation.
	ImproveSteiner bool
	// Workers sizes the worker pool the engine fans independent inner
	// work out over (contention matrix rows, dual-growth tick phases,
	// per-terminal shortest-path trees). 0 uses GOMAXPROCS; 1 or less
	// runs the sequential reference path. Placements are byte-identical
	// at any worker count.
	Workers int
	// ChunkStarted, when non-nil, is invoked with the chunk id at the
	// start of each per-chunk iteration of the centralized algorithm —
	// an observability hook for progress reporting and cancellation
	// tests. It runs on the solving goroutine; keep it fast. Partitioned
	// solves run regions concurrently and do not invoke the hook.
	ChunkStarted func(chunk int)
	// Partition, when non-nil, routes the solve through the geographic
	// sharding path (AlgorithmApprox only): the topology is cut into
	// connected regions, each region is solved in parallel by its own
	// engine over region-local cost matrices, and the placements are
	// stitched with a boundary-reconciliation pass. See PartitionOptions.
	Partition *PartitionOptions
	// Explain asks the solve to record phase spans regardless of the
	// solver's trace sampling and return a per-phase summary in
	// Result.Trace (durations plus counters: dual-growth ticks, admitted
	// facilities, repaired cost rows, stitch re-bids). Placements are
	// byte-identical with and without Explain.
	Explain bool
	// TraceID labels this request's trace spans (ring buffer, explain
	// report, logs). Empty means a generated id. The daemon threads the
	// W3C traceparent id from the client through here.
	TraceID string
}

// Algorithm identifies a placement algorithm in results and reports.
// The canonical names are the paper's figure labels ("Appx", "Dist",
// "Hopc", "Cont", "Brtf"); ParseAlgorithm accepts those plus the legacy
// long-form aliases.
type Algorithm string

// The five algorithms of the paper's evaluation.
const (
	AlgorithmApprox      Algorithm = "Appx"
	AlgorithmDistributed Algorithm = "Dist"
	AlgorithmHopCount    Algorithm = "Hopc"
	AlgorithmContention  Algorithm = "Cont"
	AlgorithmOptimal     Algorithm = "Brtf"
)

// String returns the canonical name, e.g. "Appx".
func (a Algorithm) String() string { return string(a) }

// ParseAlgorithm resolves a case-insensitive algorithm name onto its
// canonical Algorithm. Besides the canonical names it accepts the legacy
// aliases that predate the enum — "approximate", "distribute[d]",
// "hopcount", "contention", "optimal"/"exact" — and the empty string,
// which selects the paper's primary algorithm (Appx). Unknown names
// return an error wrapping ErrBadArgument.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "appx", "approximate", "":
		return AlgorithmApprox, nil
	case "dist", "distribute", "distributed":
		return AlgorithmDistributed, nil
	case "hopc", "hopcount":
		return AlgorithmHopCount, nil
	case "cont", "contention":
		return AlgorithmContention, nil
	case "brtf", "optimal", "exact":
		return AlgorithmOptimal, nil
	default:
		return "", fmt.Errorf("%w: unknown algorithm %q (want Appx, Dist, Hopc, Cont or Brtf)", ErrBadArgument, s)
	}
}

// Result is the outcome of a placement run.
type Result struct {
	// Algorithm that produced the placement.
	Algorithm Algorithm
	// Producer is the data producer node (never caches).
	Producer int
	// Chunks is the number of distinct data chunks placed.
	Chunks int
	// Capacity is the per-node cache capacity used.
	Capacity int
	// Holders[n] lists the nodes caching chunk n.
	Holders [][]int
	// Counts[i] is the number of chunks cached on node i.
	Counts []int
	// Messages counts distributed protocol messages by type (Distribute
	// only; nil otherwise).
	Messages map[string]int
	// ProvenOptimal reports whether an Optimal run completed its search
	// exhaustively (always false for other algorithms).
	ProvenOptimal bool
	// Partition describes the decomposition of a sharded solve (nil for
	// global solves).
	Partition *PartitionReport
	// Trace is the per-phase explain summary, present only when the
	// request set Options.Explain.
	Trace *ExplainReport

	topo     *Topology
	strategy metrics.AccessStrategy
	base     *cache.State // pre-placement state (capacities, batteries)
}

func (o *Options) withDefaults() Options {
	out := Options{
		Capacity:       5,
		FairnessWeight: 1,
		HopLimit:       2,
	}
	if o == nil {
		return out
	}
	if o.Capacity > 0 {
		out.Capacity = o.Capacity
	}
	out.Capacities = o.Capacities
	out.AlphaStep = o.AlphaStep
	out.GammaStep = o.GammaStep
	out.SpanQuorum = o.SpanQuorum
	if o.FairnessWeight != 0 {
		out.FairnessWeight = o.FairnessWeight
	}
	if out.FairnessWeight < 0 {
		out.FairnessWeight = 0
	}
	if o.HopLimit > 0 {
		out.HopLimit = o.HopLimit
	}
	out.Lambda = o.Lambda
	out.SearchBudget = o.SearchBudget
	out.SearchWidth = o.SearchWidth
	out.BatteryLevels = o.BatteryLevels
	if o.BatteryWeight > 0 {
		out.BatteryWeight = o.BatteryWeight
	}
	out.ChunkTTL = o.ChunkTTL
	out.GreedyConFL = o.GreedyConFL
	out.ImproveSteiner = o.ImproveSteiner
	out.Workers = o.Workers
	out.ChunkStarted = o.ChunkStarted
	out.Partition = o.Partition
	out.Explain = o.Explain
	out.TraceID = o.TraceID
	return out
}

// newState builds the initial cache state for a run, applying battery
// levels when the battery-fairness extension is enabled.
func newState(t *Topology, o Options) *cache.State {
	var st *cache.State
	if len(o.Capacities) > 0 {
		caps := make([]int, t.NumNodes())
		for i := range caps {
			caps[i] = o.Capacity
			if i < len(o.Capacities) {
				caps[i] = o.Capacities[i]
			}
		}
		st = cache.NewStateWithCapacities(caps)
	} else {
		st = cache.NewState(t.NumNodes(), o.Capacity)
	}
	for i, level := range o.BatteryLevels {
		if i >= t.NumNodes() {
			break
		}
		st.SetBattery(i, level)
	}
	return st
}

func newResult(t *Topology, alg Algorithm, producer, chunks, capacity int, holders [][]int, st, base *cache.State, strategy metrics.AccessStrategy) *Result {
	return &Result{
		Algorithm: alg,
		Producer:  producer,
		Chunks:    chunks,
		Capacity:  capacity,
		Holders:   holders,
		Counts:    st.Counts(),
		topo:      t,
		strategy:  strategy,
		base:      base,
	}
}

// CostReport is the contention-cost evaluation of a placement, split by
// phase as in the paper's Fig. 2.
type CostReport struct {
	// Access is the accessing-phase contention cost (every node fetches
	// every chunk).
	Access float64
	// Dissemination is the dissemination-phase cost (per-chunk Steiner
	// trees, replayed incrementally).
	Dissemination float64
	// PerChunk holds each chunk's access + dissemination cost (Fig. 9).
	PerChunk []float64
	// AccessDelay estimates the accessing-phase latency under the
	// linearised 802.11 DCF model of Sec. III-C.
	AccessDelay time.Duration
}

// Total returns Access + Dissemination.
func (c *CostReport) Total() float64 { return c.Access + c.Dissemination }

// ContentionCost evaluates the placement under the paper's uniform replay
// metric, using the algorithm's own accessing strategy.
func (r *Result) ContentionCost() (*CostReport, error) {
	ev, err := metrics.Evaluate(r.topo.g, r.base, r.Producer, r.Holders, r.strategy)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	report := &CostReport{
		Access:        ev.Access,
		Dissemination: ev.Dissemination,
		PerChunk:      make([]float64, len(ev.PerChunk)),
		AccessDelay:   time.Duration(ev.AccessDelay * float64(time.Microsecond)),
	}
	for i, pc := range ev.PerChunk {
		report.PerChunk[i] = pc.Total()
	}
	return report, nil
}

// Gini returns the Gini coefficient of the per-node caching load
// (Sec. V): 0 is perfectly fair, values toward 1 are concentrated.
func (r *Result) Gini() float64 { return metrics.Gini(r.Counts) }

// PercentileFairness returns the fraction of nodes needed to hold p
// percent of all cached copies (the paper's p-percentile fairness;
// ideally p%).
func (r *Result) PercentileFairness(p float64) (float64, error) {
	v, err := metrics.PercentileFairness(r.Counts, p)
	if err != nil {
		return 0, fmt.Errorf("faircache: %w", err)
	}
	return v, nil
}

// StorageCurve returns, for k = 1..N, the fraction of all cached copies
// held by the k most-loaded nodes (Fig. 6).
func (r *Result) StorageCurve() []float64 { return metrics.StorageCurve(r.Counts) }

// DistinctCacheNodes returns how many nodes cache at least one chunk.
func (r *Result) DistinctCacheNodes() int {
	n := 0
	for _, c := range r.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// TotalCopies returns the total number of cached chunk copies.
func (r *Result) TotalCopies() int {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	return total
}
