//go:build race

package faircache_test

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation makes testing.AllocsPerRun jitter by tens of allocs;
// strict allocation-delta tests skip themselves under it.
const raceEnabled = true
