// Package client is the typed Go client for the faircached v1 API. It
// reuses the server's request and response types, so a program driving
// the daemon compiles against exactly the wire schema the service
// decodes, and it surfaces the service's typed error envelope
// ({"error": {"code", "message"}}) as *client.APIError values.
//
// Every method takes a context first and honors its cancellation. The
// zero-value http.Client timeout policy is the caller's: pass one via
// WithHTTPClient or accept the default 30s client.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// APIError is a non-2xx response decoded from the service's JSON error
// envelope. Status is the HTTP status; Code and Message mirror the
// envelope ("bad_request", "not_found", ...). Responses that are not
// valid envelopes still produce an APIError with an empty Code.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("faircached: status %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("faircached: %s: %s", e.Code, e.Message)
}

// IsNotFound reports whether err is an APIError with the service's
// not_found code (unknown topology, unknown chunk).
func IsNotFound(err error) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == server.CodeNotFound
}

// Client talks to one faircached service.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client (default: 30s
// timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the service at baseURL, e.g.
// "http://127.0.0.1:8080".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the service root this client targets.
func (c *Client) BaseURL() string { return c.base }

// Register creates a topology and returns its id and shape.
func (c *Client) Register(ctx context.Context, req *server.RegisterRequest) (*server.RegisterResponse, error) {
	var out server.RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/topologies", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Topologies lists every registered topology.
func (c *Client) Topologies(ctx context.Context) ([]server.TopologyInfo, error) {
	var out struct {
		Topologies []server.TopologyInfo `json:"topologies"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/topologies", nil, &out); err != nil {
		return nil, err
	}
	return out.Topologies, nil
}

// Topology fetches one topology's list row.
func (c *Client) Topology(ctx context.Context, id string) (*server.TopologyInfo, error) {
	var out server.TopologyInfo
	if err := c.do(ctx, http.MethodGet, "/v1/topologies/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete unregisters a topology.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/topologies/"+id, nil, nil)
}

// Solve runs one placement solve and returns the committed result.
func (c *Client) Solve(ctx context.Context, id string, req *server.SolveRequest) (*server.SolveResponse, error) {
	var out server.SolveResponse
	if req == nil {
		req = &server.SolveRequest{}
	}
	if err := c.do(ctx, http.MethodPost, "/v1/topologies/"+id+"/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Publish commits count online publications (count < 1 publishes one).
func (c *Client) Publish(ctx context.Context, id string, count int) (*server.PublishResponse, error) {
	if count < 1 {
		count = 1
	}
	var out server.PublishResponse
	if err := c.do(ctx, http.MethodPost, "/v1/topologies/"+id+"/publish", &server.PublishRequest{Count: count}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Lookup answers "which node serves chunk to node" against the
// committed snapshot.
func (c *Client) Lookup(ctx context.Context, id string, chunk, node int) (*server.LookupResponse, error) {
	var out server.LookupResponse
	path := fmt.Sprintf("/v1/topologies/%s/lookup?chunk=%d&node=%d", id, chunk, node)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report fetches the full fairness report for a topology.
func (c *Client) Report(ctx context.Context, id string) (*server.ReportResponse, error) {
	var out server.ReportResponse
	if err := c.do(ctx, http.MethodGet, "/v1/topologies/"+id+"/report", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Requests reports a demand batch to the topology's demand subsystem.
func (c *Client) Requests(ctx context.Context, id string, req *server.RequestsRequest) (*server.RequestsResponse, error) {
	var out server.RequestsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/topologies/"+id+"/requests", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Adapt runs one demand-driven adaptation pass.
func (c *Client) Adapt(ctx context.Context, id string) (*server.AdaptResponse, error) {
	var out server.AdaptResponse
	if err := c.do(ctx, http.MethodPost, "/v1/topologies/"+id+"/adapt", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdaptWith runs one adaptation pass with observability options (e.g.
// Explain, which returns the pass's per-phase trace breakdown).
func (c *Client) AdaptWith(ctx context.Context, id string, req *server.AdaptRequest) (*server.AdaptResponse, error) {
	var out server.AdaptResponse
	if err := c.do(ctx, http.MethodPost, "/v1/topologies/"+id+"/adapt", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the service health summary.
func (c *Client) Healthz(ctx context.Context) (*server.HealthResponse, error) {
	var out server.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus exposition text from GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// do issues one request and decodes the response into out (out may be
// nil to discard a success body). Non-2xx statuses decode the error
// envelope into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var rd io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := newTraceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var envelope struct {
			Error *server.Error `json:"error"`
		}
		if jerr := json.Unmarshal(body, &envelope); jerr == nil && envelope.Error != nil {
			return &APIError{Status: resp.StatusCode, Code: envelope.Error.Code, Message: envelope.Error.Message}
		}
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// newTraceparent mints a W3C trace-context header
// ("00-<trace-id>-<span-id>-01") with fresh random ids, one per request.
// The daemon threads the trace id through its logs, spans and responses
// (SolveResponse.TraceID), so a client-side failure can be matched to
// the exact server-side computation — including a coalesced one, whose
// response carries the flight leader's id instead. Returns "" if the
// randomness source fails; the server then generates an id itself.
func newTraceparent() string {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return "00-" + hex.EncodeToString(b[:16]) + "-" + hex.EncodeToString(b[16:]) + "-01"
}
